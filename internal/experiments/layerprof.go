package experiments

import (
	"fmt"
	"strings"

	"pbqpdnn/internal/cost"
	"pbqpdnn/internal/dnn/models"
	"pbqpdnn/internal/exec"
	"pbqpdnn/internal/obs"
	"pbqpdnn/internal/selector"
)

// This file implements the layerprof experiment: the always-on flavor
// of the per-instruction execution profile (internal/obs). Where the
// server samples sparsely and accumulates over live traffic, the bench
// enables profiling on every chunk and drives a fixed batch through
// the engine repeatedly, so the predicted-vs-observed table converges
// in seconds — the offline way to ask "where does the time actually
// go, and which cost-model entries are lying on this machine?".

// LayerProf selects and compiles netName at each batch size, runs the
// compiled engine reps times with always-on profiling (after one
// unprofiled warm-up run), and returns one per-layer
// predicted-vs-observed table per batch.
func LayerProf(netName string, threads int, batches []int, reps int) ([]*obs.LayerTable, error) {
	if reps < 1 {
		reps = 1
	}
	g, err := models.Build(netName)
	if err != nil {
		return nil, err
	}
	opts := selector.Options{Prof: cost.NewModel(cost.IntelHaswell), Threads: threads}
	w := exec.NewWeights(g)

	var tables []*obs.LayerTable
	for _, batch := range batches {
		plan, err := selector.SelectBatch(g, batch, opts)
		if err != nil {
			return nil, err
		}
		eng, err := exec.NewEngineBatch(plan, w, batch)
		if err != nil {
			return nil, err
		}
		inputs := makeBatch(g, batch)
		// Warm before attaching the profile: the first run's page faults
		// and cache warm-up would otherwise skew every layer's mean.
		if _, err := eng.RunBatch(inputs); err != nil {
			return nil, err
		}
		eng.EnableProfiling(1)
		for i := 0; i < reps; i++ {
			if _, err := eng.RunBatch(inputs); err != nil {
				return nil, err
			}
		}
		tables = append(tables, eng.LayerTable())
	}
	return tables, nil
}

// FormatLayerProf renders the tables with a one-line summary each.
func FormatLayerProf(tables []*obs.LayerTable) string {
	var b strings.Builder
	for i, t := range tables {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(t.Format())
		fmt.Fprintf(&b, "totals: predicted %.3f ms/img, observed %.3f ms/img (wall)\n",
			t.PredictedTotalNSPerImage/1e6, t.ObservedNSPerImage/1e6)
	}
	return b.String()
}
