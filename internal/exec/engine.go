package exec

// This file implements the batched, branch-parallel execution engine.
// Where Run (exec.go) walks the network one layer at a time with a
// fresh allocation per operator — the correctness oracle — the Engine
// is the production path: a dependency-counting DAG scheduler
// dispatches ready layers onto a worker pool sized by the plan's
// Threads budget (so independent inception branches, residual
// shortcuts, and minibatch images run concurrently), a size-keyed
// arena recycles intermediate buffers, and the wildcard operators take
// the layout-specialized fast paths in fastpath.go.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pbqpdnn/internal/dnn"
	"pbqpdnn/internal/selector"
	"pbqpdnn/internal/tensor"
)

// Engine executes one legalized plan repeatedly. Construction
// precomputes the schedule (topological order, dependency and consumer
// counts) so per-run work is only the layer computations themselves.
// An Engine is safe for concurrent use: per-run state lives on the
// call stack and the shared arena is internally synchronized. The plan
// and weights must not be mutated while the Engine is in use.
//
// Threading model: the worker pool has plan.Threads workers and
// primitives run single-threaded inside a task — inter-layer (and
// inter-image) parallelism replaces the intra-primitive parallelism
// Run uses. When the DAG leaves a worker alone (a chain network at
// batch 1), the scheduler hands that task the full thread budget so no
// part of the budget idles.
type Engine struct {
	plan    *selector.Plan
	w       *Weights
	workers int

	order    []int   // topological layer order
	preds    [][]int // predecessor ids per layer (graph order)
	succs    [][]int // successor ids per layer (graph order)
	outputID int     // the layer whose tensor Run/RunBatch return

	arena *arena
}

// NewEngine validates the plan and precomputes the schedule.
func NewEngine(plan *selector.Plan, w *Weights) (*Engine, error) {
	if err := plan.Check(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	net := plan.Net
	order, err := net.TopoOrder()
	if err != nil {
		return nil, err
	}
	// The plan's Threads value is a budget, not a mandate: running more
	// CPU-bound tasks than the runtime has processors only interleaves
	// half-finished convolutions on the same core and thrashes its
	// caches, so the pool is capped at GOMAXPROCS.
	workers := plan.Threads
	if workers < 1 {
		workers = 1
	}
	if procs := runtime.GOMAXPROCS(0); workers > procs {
		workers = procs
	}
	e := &Engine{
		plan:     plan,
		w:        w,
		workers:  workers,
		order:    order,
		preds:    make([][]int, net.NumLayers()),
		succs:    make([][]int, net.NumLayers()),
		outputID: order[len(order)-1],
		arena:    newArena(),
	}
	for _, l := range net.Layers {
		e.preds[l.ID] = net.Preds(l.ID)
		e.succs[l.ID] = net.Succs(l.ID)
	}
	return e, nil
}

// Run executes the plan on a single image. It is equivalent to
// RunBatch with a batch of one.
func (e *Engine) Run(input *tensor.Tensor) (*tensor.Tensor, error) {
	outs, err := e.RunBatch([]*tensor.Tensor{input})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// RunBatch executes the plan on an N-image minibatch, reusing the one
// legalized plan (and the engine's buffer arena) across all images.
// Every (image, layer) pair is an independently schedulable task;
// tasks from different images interleave freely on the worker pool, so
// the minibatch dimension parallelizes even for chain networks. The
// returned slice holds each image's output in input order. Outputs
// honor Run's no-alias contract: they never share storage with the
// caller's inputs, and they are never recycled into the arena.
func (e *Engine) RunBatch(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("exec: empty batch")
	}
	net := e.plan.Net
	n := net.NumLayers()
	il := net.Layers[e.order[0]]
	for _, in := range inputs {
		if in.C != il.OutC || in.H != il.OutH || in.W != il.OutW {
			return nil, fmt.Errorf("exec: input %s does not match network input %d×%d×%d",
				in, il.OutC, il.OutH, il.OutW)
		}
	}

	total := len(inputs) * n
	st := &batchState{
		results: make([][]*tensor.Tensor, len(inputs)),
		deps:    make([][]int32, len(inputs)),
		refs:    make([][]int32, len(inputs)),
		tasks:   make(chan task, total),
		stop:    make(chan struct{}),
		total:   int64(total),
	}
	for img := range inputs {
		st.results[img] = make([]*tensor.Tensor, n)
		st.deps[img] = make([]int32, n)
		st.refs[img] = make([]int32, n)
		for id := 0; id < n; id++ {
			st.deps[img][id] = int32(len(e.preds[id]))
			st.refs[img][id] = int32(len(e.succs[id]))
		}
		// The caller keeps the batch output; never recycle it.
		st.refs[img][e.outputID]++
	}
	// Seed the queue: the input layer of every image is ready at once —
	// this is what lets a 4-worker pool overlap 4 images of a chain
	// network from the first dispatch.
	for img := range inputs {
		for _, id := range e.order {
			if st.deps[img][id] == 0 {
				st.tasks <- task{img: img, layer: id}
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-st.stop:
					return
				case t := <-st.tasks:
					e.runTask(st, inputs, t)
				}
			}
		}()
	}
	wg.Wait()
	if err := st.loadErr(); err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(inputs))
	for img := range inputs {
		outs[img] = st.results[img][e.outputID]
	}
	return outs, nil
}

// task identifies one unit of schedulable work: one layer of one image.
type task struct {
	img, layer int
}

// batchState is the per-RunBatch scheduler state.
type batchState struct {
	results [][]*tensor.Tensor
	deps    [][]int32 // unfinished predecessors per (image, layer)
	refs    [][]int32 // unfinished consumers per (image, layer)

	tasks chan task     // buffered to the task total: sends never block
	stop  chan struct{} // closed on completion or first error

	total     int64
	completed int64
	running   int32

	errOnce sync.Once
	err     atomic.Value // error
	done    sync.Once
}

func (st *batchState) fail(err error) {
	st.errOnce.Do(func() { st.err.Store(err) })
	st.done.Do(func() { close(st.stop) })
}

func (st *batchState) loadErr() error {
	if v := st.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// runTask executes one (image, layer) unit: legalize the incoming
// edges, apply the operator, recycle dead tensors, and unlock
// successors.
func (e *Engine) runTask(st *batchState, inputs []*tensor.Tensor, t task) {
	atomic.AddInt32(&st.running, 1)
	defer atomic.AddInt32(&st.running, -1)

	out, err := e.compute(st, inputs, t)
	if err != nil {
		st.fail(err)
		return
	}
	l := e.plan.Net.Layers[t.layer]
	if out.C != l.OutC || out.H != l.OutH || out.W != l.OutW {
		st.fail(fmt.Errorf("exec: layer %q produced %s, want %d×%d×%d",
			l.Name, out, l.OutC, l.OutH, l.OutW))
		return
	}
	st.results[t.img][t.layer] = out

	// Release predecessors whose last consumer this task was.
	for _, p := range e.preds[t.layer] {
		if atomic.AddInt32(&st.refs[t.img][p], -1) == 0 {
			e.arena.putTensor(st.results[t.img][p])
			st.results[t.img][p] = nil
		}
	}
	// A layer nothing consumes (only the batch output, normally) still
	// holds its caller reference; nothing to release here.

	// Unlock successors that just became ready.
	for _, s := range e.succs[t.layer] {
		if atomic.AddInt32(&st.deps[t.img][s], -1) == 0 {
			st.tasks <- task{img: t.img, layer: s}
		}
	}
	if atomic.AddInt64(&st.completed, 1) == st.total {
		st.done.Do(func() { close(st.stop) })
	}
}

// fetchConverted returns pred's tensor legalized for the edge
// (pred → id), plus the chain temporary to recycle after the operator
// runs (nil when the edge needed no conversion).
func (e *Engine) fetchConverted(st *batchState, t task, pred int) (in, temp *tensor.Tensor) {
	tns := st.results[t.img][pred]
	for _, tr := range e.plan.Conversions[[2]int{pred, t.layer}] {
		next := tr.Run(tns)
		if tns != st.results[t.img][pred] {
			e.arena.putTensor(tns)
		}
		tns = next
	}
	if tns != st.results[t.img][pred] {
		temp = tns
	}
	return tns, temp
}

// primThreads decides the intra-primitive thread budget for one task:
// normally 1 (the pool itself is the parallelism), but a task running
// alone with an empty queue inherits the whole budget so chain
// segments of the DAG do not serialize onto a single worker.
func (e *Engine) primThreads(st *batchState) int {
	if e.workers > 1 && atomic.LoadInt32(&st.running) == 1 && len(st.tasks) == 0 {
		return e.workers
	}
	return 1
}

// compute applies one layer's operator and returns its output tensor.
func (e *Engine) compute(st *batchState, inputs []*tensor.Tensor, t task) (*tensor.Tensor, error) {
	net := e.plan.Net
	l := net.Layers[t.layer]
	ar := e.arena

	switch l.Kind {
	case dnn.KindInput:
		// Copy-on-identity into an engine-owned buffer: outputs and
		// intermediates must never alias the caller's input.
		layout := e.plan.Layouts[t.layer]
		in := inputs[t.img]
		out := ar.newTensor(layout, l.OutC, l.OutH, l.OutW)
		if in.Layout == layout {
			copy(out.Data, in.Data)
		} else {
			tensor.ConvertInto(out, in)
		}
		return out, nil

	case dnn.KindConv:
		in, temp := e.fetchConverted(st, t, e.preds[t.layer][0])
		p := e.plan.Primitives[t.layer]
		if in.Layout != p.In {
			return nil, fmt.Errorf("exec: layer %q: got %s input, primitive %s wants %s",
				l.Name, in.Layout, p.Name, p.In)
		}
		out := p.Run(in, e.w.Kernels[t.layer], l.Conv, e.primThreads(st))
		ar.putTensor(temp)
		return out, nil

	case dnn.KindReLU, dnn.KindLRN, dnn.KindMaxPool, dnn.KindAvgPool,
		dnn.KindDropout, dnn.KindSoftmax, dnn.KindFC:
		in, temp := e.fetchConverted(st, t, e.preds[t.layer][0])
		out := ar.newTensor(e.plan.Layouts[t.layer], l.OutC, l.OutH, l.OutW)
		switch l.Kind {
		case dnn.KindReLU:
			reluInto(out, in)
		case dnn.KindLRN:
			lrnInto(out, in)
		case dnn.KindMaxPool:
			poolInto(out, in, l, true)
		case dnn.KindAvgPool:
			poolInto(out, in, l, false)
		case dnn.KindDropout:
			copyInto(out, in)
		case dnn.KindSoftmax:
			softmaxInto(out, in)
		case dnn.KindFC:
			fcInto(out, in, e.w.FC[t.layer], l.FCOut)
		}
		ar.putTensor(temp)
		return out, nil

	case dnn.KindConcat, dnn.KindAdd:
		ins := make([]*tensor.Tensor, 0, len(e.preds[t.layer]))
		var temps []*tensor.Tensor
		for _, p := range e.preds[t.layer] {
			in, temp := e.fetchConverted(st, t, p)
			ins = append(ins, in)
			if temp != nil {
				temps = append(temps, temp)
			}
		}
		out := ar.newTensor(e.plan.Layouts[t.layer], l.OutC, l.OutH, l.OutW)
		if l.Kind == dnn.KindConcat {
			concatInto(out, ins)
		} else {
			addInto(out, ins)
		}
		for _, temp := range temps {
			ar.putTensor(temp)
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: unsupported layer kind %s", l.Kind)
}

// RunBatch executes the plan on a minibatch with a freshly constructed
// engine — the convenience entry point mirroring Run. Callers that
// execute a plan repeatedly should construct one Engine and reuse it,
// keeping the arena warm across calls.
func RunBatch(plan *selector.Plan, inputs []*tensor.Tensor, w *Weights) ([]*tensor.Tensor, error) {
	e, err := NewEngine(plan, w)
	if err != nil {
		return nil, err
	}
	return e.RunBatch(inputs)
}
