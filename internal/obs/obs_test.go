package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProfileSamplingRatio(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		p := NewProfile(3, k)
		sampled := 0
		const calls = 1600
		for i := 0; i < calls; i++ {
			if p.SampleChunk() {
				sampled++
			}
		}
		if want := calls / k; sampled != want {
			t.Errorf("k=%d: sampled %d of %d chunks, want %d", k, sampled, calls, want)
		}
	}
}

func TestProfileAlwaysOnDefaults(t *testing.T) {
	// k ≤ 1 clamps to always-on rather than dividing by zero.
	for _, k := range []int{-1, 0, 1} {
		p := NewProfile(1, k)
		if p.Every() != 1 {
			t.Errorf("NewProfile(1, %d).Every() = %d, want 1", k, p.Every())
		}
		if !p.SampleChunk() {
			t.Errorf("k=%d: first chunk not sampled under always-on", k)
		}
	}
}

func TestProfileAccumulates(t *testing.T) {
	p := NewProfile(2, 1)
	p.Observe(0, 100)
	p.Observe(0, 50)
	p.Observe(1, 7)
	p.ObserveChunk(4, 200)
	s := p.Snapshot()
	if s.NS[0] != 150 || s.Samples[0] != 2 {
		t.Errorf("instr 0: ns=%d samples=%d, want 150/2", s.NS[0], s.Samples[0])
	}
	if s.NS[1] != 7 || s.Samples[1] != 1 {
		t.Errorf("instr 1: ns=%d samples=%d, want 7/1", s.NS[1], s.Samples[1])
	}
	if s.Chunks != 1 || s.Images != 4 || s.WallNS != 200 {
		t.Errorf("chunk totals %d/%d/%d, want 1/4/200", s.Chunks, s.Images, s.WallNS)
	}
}

// TestProfileConcurrent hammers the hot-path methods from many
// goroutines; under -race this proves the lock-free contract.
func TestProfileConcurrent(t *testing.T) {
	p := NewProfile(4, 2)
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if p.SampleChunk() {
					p.Observe(i%4, 1)
					p.ObserveChunk(1, 2)
				}
				if i%100 == 0 {
					p.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	wantChunks := int64(workers * perW / 2)
	if s.Chunks != wantChunks {
		t.Errorf("sampled %d chunks, want %d", s.Chunks, wantChunks)
	}
	var total int64
	for _, n := range s.NS {
		total += n
	}
	if total != wantChunks {
		t.Errorf("accumulated %d ns, want %d", total, wantChunks)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	if s.MeanMS() != 0 {
		t.Errorf("empty histogram mean = %v, want 0", s.MeanMS())
	}

	// Single observation: every quantile lands in its bucket.
	h.Observe(10 * time.Microsecond) // bucket upper bound 16µs
	s = h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		if got <= 0 || got > 16*time.Microsecond {
			t.Errorf("single-sample q%.0f%% = %v, want in (0, 16µs]", q*100, got)
		}
	}

	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-1); got <= 0 {
		t.Errorf("q<0 = %v, want clamped to a positive estimate", got)
	}
	if got := s.Quantile(2); got <= 0 {
		t.Errorf("q>1 = %v, want clamped to a positive estimate", got)
	}

	// Negative durations clamp to zero rather than indexing below the
	// first bucket.
	h2 := NewHistogram()
	h2.Observe(-time.Second)
	if got := h2.Snapshot().Count; got != 1 {
		t.Errorf("negative observation count = %d, want 1", got)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram()
	// 90 fast observations and 10 slow ones: p50 must sit near the fast
	// mode, p99 near the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want ≤ 1ms (fast mode)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want ≥ 10ms (slow mode)", p99)
	}
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Hour) // beyond the last finite bound (~16.8s)
	s := h.Snapshot()
	if got := s.Counts[len(s.Counts)-1]; got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	// Overflow quantiles report the last finite bound, not garbage.
	bounds := HistogramBounds()
	if got, want := s.Quantile(1), bounds[len(bounds)-1]; got != want {
		t.Errorf("overflow p100 = %v, want last finite bound %v", got, want)
	}
}

func TestHistogramBoundsDouble(t *testing.T) {
	bounds := HistogramBounds()
	if bounds[0] != time.Microsecond {
		t.Fatalf("first bound %v, want 1µs", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bounds[%d] = %v, want double of %v", i, bounds[i], bounds[i-1])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond)
				if i%200 == 0 {
					h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestLayerTableFinish(t *testing.T) {
	tab := &LayerTable{
		Net: "t", Batch: 2, SampleEvery: 1,
		SampledChunks: 1, SampledImages: 2, EngineWallNS: 1000,
		Rows: []LayerRow{
			{Layer: "a", ObservedNS: 600, Samples: 1, PredictedNSPerImage: 150},
			{Layer: "b", ObservedNS: 300, Samples: 1},
		},
	}
	tab.Finish()
	if tab.ObservedTotalNS != 900 {
		t.Errorf("observed total = %d, want 900", tab.ObservedTotalNS)
	}
	if math.Abs(tab.Coverage-0.9) > 1e-9 {
		t.Errorf("coverage = %v, want 0.9", tab.Coverage)
	}
	if got := tab.Rows[0].ObservedNSPerImage; got != 300 {
		t.Errorf("row a ns/img = %v, want 300", got)
	}
	if got := tab.Rows[0].Ratio; math.Abs(got-2) > 1e-9 {
		t.Errorf("row a ratio = %v, want 2", got)
	}
	if got := tab.Rows[1].Ratio; got != 0 {
		t.Errorf("row b (no prediction) ratio = %v, want 0", got)
	}
	if got := tab.Rows[0].Share + tab.Rows[1].Share; math.Abs(got-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", got)
	}
	if out := tab.Format(); !strings.Contains(out, "covers 90.0%") {
		t.Errorf("Format missing coverage line:\n%s", out)
	}
}
