package tensor

import (
	"testing"
	"testing/quick"
)

// genericConvert is the element-wise logical-copy oracle, kept separate
// from ConvertInto's specialized dispatch so the tests below are not
// circular.
func genericConvert(src *Tensor, to Layout) *Tensor {
	dst := New(to, src.C, src.H, src.W)
	convertIntoGeneric(dst, src)
	return dst
}

// TestDirectTransformsMatchConvert checks every specialized transform
// routine against the generic logical-copy oracle.
func TestDirectTransformsMatchConvert(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {3, 4, 5}, {8, 2, 3}, {9, 3, 2}, {16, 5, 5}, {5, 7, 1}}
	for _, tr := range DirectTransforms() {
		for _, s := range shapes {
			src := New(tr.From, s[0], s[1], s[2])
			src.FillRandom(int64(s[0]*100 + s[1]*10 + s[2]))
			got := tr.Run(src)
			if got.Layout != tr.To {
				t.Fatalf("%s: output layout %s, want %s", tr.Name, got.Layout, tr.To)
			}
			want := genericConvert(src, tr.To)
			if !AlmostEqual(got, want, 0) {
				t.Errorf("%s on %v: output differs from reference", tr.Name, s)
			}
		}
	}
}

// TestConvertIntoMatchesGenericAllPairs checks the specialized
// ConvertInto dispatch against the generic oracle for every ordered
// layout pair (the executor's compiled programs lean on ConvertInto for
// input legalization and fused conversion chains).
func TestConvertIntoMatchesGenericAllPairs(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {3, 4, 5}, {8, 2, 3}, {9, 3, 2}, {17, 5, 5}}
	for _, from := range Layouts() {
		for _, to := range Layouts() {
			for _, s := range shapes {
				src := New(from, s[0], s[1], s[2])
				src.FillRandom(int64(100*int(from) + 10*int(to) + s[0]))
				got := Convert(src, to)
				want := genericConvert(src, to)
				if !AlmostEqual(got, want, 0) {
					t.Errorf("ConvertInto %s→%s on %v differs from generic copy", from, to, s)
				}
				// Padding lanes of blocked destinations must stay zero.
				for i, v := range got.Data {
					if v != want.Data[i] {
						t.Errorf("%s→%s on %v: physical element %d is %v, want %v", from, to, s, i, v, want.Data[i])
						break
					}
				}
			}
		}
	}
}

func TestDirectTransformsRejectWrongLayout(t *testing.T) {
	for _, tr := range DirectTransforms() {
		wrong := tr.From + 1
		if !Layout(wrong).Valid() {
			wrong = 0
		}
		if Layout(wrong) == tr.From {
			continue
		}
		src := New(Layout(wrong), 2, 2, 2)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: should panic on %s input", tr.Name, src.Layout)
				}
			}()
			tr.Run(src)
		}()
	}
}

// TestTransformChainRoundTrip: property test — applying a forward
// transform and its inverse (when the library has one) is the identity.
func TestTransformChainRoundTrip(t *testing.T) {
	byPair := map[[2]Layout]Transform{}
	for _, tr := range DirectTransforms() {
		byPair[[2]Layout{tr.From, tr.To}] = tr
	}
	f := func(seed int64) bool {
		for _, tr := range DirectTransforms() {
			inv, ok := byPair[[2]Layout{tr.To, tr.From}]
			if !ok {
				continue
			}
			src := New(tr.From, 4, 3, 5)
			src.FillRandom(seed)
			if !AlmostEqual(src, inv.Run(tr.Run(src)), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Error(err)
	}
}

// TestTransformCoverageIsSparse pins the design property that the direct
// transform set is incomplete, so the DT graph requires chains.
func TestTransformCoverageIsSparse(t *testing.T) {
	have := map[[2]Layout]bool{}
	for _, tr := range DirectTransforms() {
		have[[2]Layout{tr.From, tr.To}] = true
	}
	n := len(Layouts())
	if len(have) >= n*(n-1) {
		t.Fatalf("direct transform set is complete (%d pairs); DT chains would never be exercised", len(have))
	}
	// Specific holes the DT graph must bridge with chains.
	for _, gap := range [][2]Layout{{CHW, WCH}, {CHW8, CHW}, {WHC, CHW}, {HWC, WCH}} {
		if have[gap] {
			t.Errorf("expected no direct transform %s→%s", gap[0], gap[1])
		}
	}
}
