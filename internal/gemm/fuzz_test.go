package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzPackedGEMM is the differential fuzz harness for the packed-GEMM
// microkernel family: for fuzzer-chosen shapes (small 0–31 dims plus
// optional bumps across the NC=512 / KC=128 / 16-column-tile block
// boundaries) and a fuzzer-chosen NaN/Inf injection, the SIMD
// microkernel (where runnable), the pure-Go k4 microkernel, and the
// Naive oracle must agree within the library-wide 1e-4 tolerance —
// and must agree *exactly* on which outputs are NaN and on the value
// of every Inf. The three paths share no accumulation structure (one
// product at a time vs sequential k4 folds vs 8 FMA chains recombined),
// so an indexing, tiling, tail, or dispatch bug in any of them shows as
// divergence. TransB rides along so the transposed pack routine is
// fuzzed through the same oracle.
func FuzzPackedGEMM(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint16(0), int64(1), uint8(0))
	f.Add(uint16(1), uint16(1), uint16(1), int64(2), uint8(0))
	f.Add(uint16(5), uint16(31), uint16(9), int64(3), uint8(0))
	f.Add(uint16(17), uint16(16), uint16(4), int64(4), uint8(0))
	f.Add(uint16(3), uint16(7), uint16(11), int64(5), uint8(1))  // n across NC
	f.Add(uint16(9), uint16(20), uint16(2), int64(6), uint8(2))  // k across KC
	f.Add(uint16(2), uint16(13), uint16(6), int64(7), uint8(3))  // both
	f.Add(uint16(8), uint16(24), uint16(10), int64(8), uint8(4)) // NaN into A
	f.Add(uint16(6), uint16(18), uint16(7), int64(9), uint8(24)) // +Inf into B
	f.Add(uint16(4), uint16(33), uint16(5), int64(10), uint8(60))
	f.Fuzz(func(t *testing.T, m0, n0, k0 uint16, seed int64, special uint8) {
		m, n, k := int(m0%32), int(n0%32), int(k0%32)
		if special&1 != 0 {
			n += 505 + int(n0%24) // straddle the NC=512 stripe and 16-wide tiles
		}
		if special&2 != 0 {
			k += 121 + int(k0%16) // straddle the KC=128 block and the k4 unroll
		}
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, m*k), randMat(rng, k*n)
		// Bits 2-3 pick an injection target, bits 4-5 the special value.
		// Injected values land at data-derived positions so the fuzzer
		// can steer them through heads, tails and block edges.
		specials := [4]float32{
			float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), -0.0,
		}
		v := specials[(special>>4)&3]
		if special&4 != 0 && len(a) > 0 {
			a[int(uint64(seed)%uint64(len(a)))] = v
		}
		if special&8 != 0 && len(b) > 0 {
			b[int(uint64(seed>>8)%uint64(len(b)))] = v
		}
		bt := transpose(k, n, b)

		want := make([]float32, m*n)
		Naive(m, n, k, a, b, want)

		got := make([]float32, m*n)
		for _, variant := range PackedVariants() {
			prev := SetSIMD(variant == "avx2")
			Packed(m, n, k, a, b, got)
			diffCheck(t, variant+"/Packed", m, n, k, got, want)
			TransB(m, n, k, a, bt, got)
			diffCheck(t, variant+"/TransB", m, n, k, got, want)
			SetSIMD(prev)
		}
	})
}

// diffCheck enforces the cross-kernel agreement contract: NaN pattern
// parity, exact Inf parity, and a magnitude-scaled 1e-4 tolerance on
// finite values (k partial products of O(1) operands keep float32
// association error far inside that at the fuzzed sizes).
func diffCheck(t *testing.T, name string, m, n, k int, got, want []float32) {
	t.Helper()
	for i := range want {
		g, w := float64(got[i]), float64(want[i])
		switch {
		case math.IsNaN(w) != math.IsNaN(g):
			t.Fatalf("%s (%d,%d,%d): out[%d] NaN mismatch: got %v want %v", name, m, n, k, i, g, w)
		case math.IsNaN(w):
			// both NaN: parity holds
		case math.IsInf(w, 0) || math.IsInf(g, 0):
			if g != w {
				t.Fatalf("%s (%d,%d,%d): out[%d] Inf mismatch: got %v want %v", name, m, n, k, i, g, w)
			}
		case math.Abs(g-w) > 1e-4*math.Max(1, math.Abs(w)):
			t.Fatalf("%s (%d,%d,%d): out[%d] diff %g (got %v want %v)", name, m, n, k, i, math.Abs(g-w), g, w)
		}
	}
}
