package winograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// corr1D is the reference correlation: y_i = Σ_j d[i+j]·g[j].
func corr1D(d, g []float64) []float64 {
	m := len(d) - len(g) + 1
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := range g {
			y[i] += d[i+j] * g[j]
		}
	}
	return y
}

// corr2D is the reference 2D correlation over a full tile.
func corr2D(d []float64, t int, g []float32, r int) []float64 {
	m := t - r + 1
	y := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var s float64
			for a := 0; a < r; a++ {
				for b := 0; b < r; b++ {
					s += d[(i+a)*t+(j+b)] * float64(g[a*r+b])
				}
			}
			y[i*m+j] = s
		}
	}
	return y
}

var planCases = []struct{ m, r int }{
	{2, 3}, {4, 3}, {6, 3}, {2, 5}, {3, 5}, {4, 5}, {2, 7}, {1, 3}, {3, 1},
}

func TestPlan1DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, pc := range planCases {
		p := NewPlan(pc.m, pc.r)
		if p.T != pc.m+pc.r-1 {
			t.Fatalf("F(%d,%d): tile %d", pc.m, pc.r, p.T)
		}
		for trial := 0; trial < 10; trial++ {
			g := make([]float32, pc.r)
			d := make([]float64, p.T)
			gf := make([]float64, pc.r)
			for i := range g {
				g[i] = rng.Float32()*2 - 1
				gf[i] = float64(g[i])
			}
			for i := range d {
				d[i] = rng.Float64()*2 - 1
			}
			u := p.KernelTransform1D(g)
			v := p.InputTransform1D(d)
			s := make([]float64, p.T)
			for i := range s {
				s[i] = u[i] * v[i]
			}
			got := p.OutputTransform1D(s)
			want := corr1D(d, gf)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-8 {
					t.Fatalf("F(%d,%d) trial %d: y[%d] = %v, want %v", pc.m, pc.r, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPlan2DMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, pc := range planCases {
		p := NewPlan(pc.m, pc.r)
		g := make([]float32, pc.r*pc.r)
		d := make([]float64, p.T*p.T)
		for i := range g {
			g[i] = rng.Float32()*2 - 1
		}
		for i := range d {
			d[i] = rng.Float64()*2 - 1
		}
		u := p.KernelTransform2D(g)
		v := p.InputTransform2D(d)
		s := make([]float64, p.T*p.T)
		for i := range s {
			s[i] = u[i] * v[i]
		}
		got := p.OutputTransform2D(s)
		want := corr2D(d, p.T, g, pc.r)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("F(%d,%d): Y[%d] = %v, want %v", pc.m, pc.r, i, got[i], want[i])
			}
		}
	}
}

// TestF23KnownShape checks the canonical F(2,3) dimensions and that the
// multiplication count matches the theory: 4 multiplies instead of 6.
func TestF23KnownShape(t *testing.T) {
	p := NewPlan(2, 3)
	if p.T != 4 || len(p.AT) != 8 || len(p.G) != 12 || len(p.BT) != 16 {
		t.Fatalf("F(2,3) dims wrong: T=%d AT=%d G=%d BT=%d", p.T, len(p.AT), len(p.G), len(p.BT))
	}
	direct, wino := p.Flops1D()
	if direct != 6 || wino != 4 {
		t.Errorf("F(2,3) flops = (%d,%d), want (6,4)", direct, wino)
	}
}

// TestLinearity: property test — the whole Winograd pipeline is linear in
// the input tile.
func TestLinearity(t *testing.T) {
	p := NewPlan(2, 3)
	g := []float32{0.5, -1, 0.25}
	u := p.KernelTransform1D(g)
	run := func(d []float64) []float64 {
		v := p.InputTransform1D(d)
		s := make([]float64, p.T)
		for i := range s {
			s[i] = u[i] * v[i]
		}
		return p.OutputTransform1D(s)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		da := make([]float64, 4)
		db := make([]float64, 4)
		for i := range da {
			da[i] = rng.Float64()*20 - 10
			db[i] = rng.Float64()*20 - 10
		}
		sum := make([]float64, 4)
		for i := range sum {
			sum[i] = da[i] + db[i]
		}
		ya, yb, ys := run(da), run(db), run(sum)
		for i := range ys {
			if math.Abs(ys[i]-(ya[i]+yb[i])) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNewPlanPanics(t *testing.T) {
	for _, bad := range [][2]int{{0, 3}, {2, 0}, {9, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d,%d) should panic", bad[0], bad[1])
				}
			}()
			NewPlan(bad[0], bad[1])
		}()
	}
}

func TestTransformArgChecks(t *testing.T) {
	p := NewPlan(2, 3)
	for _, f := range []func(){
		func() { p.KernelTransform1D(make([]float32, 2)) },
		func() { p.InputTransform1D(make([]float64, 3)) },
		func() { p.OutputTransform1D(make([]float64, 5)) },
		func() { p.KernelTransform2D(make([]float32, 8)) },
		func() { p.InputTransform2D(make([]float64, 15)) },
		func() { p.OutputTransform2D(make([]float64, 15)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on wrong-size argument")
				}
			}()
			f()
		}()
	}
}

func BenchmarkF43Tile2D(b *testing.B) {
	p := NewPlan(4, 3)
	g := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	u := p.KernelTransform2D(g)
	d := make([]float64, p.T*p.T)
	for i := range d {
		d[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := p.InputTransform2D(d)
		s := make([]float64, p.T*p.T)
		for j := range s {
			s[j] = u[j] * v[j]
		}
		p.OutputTransform2D(s)
	}
}
